package core

import (
	"testing"

	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

// Failure injection: dcPIM must survive random loss of both data and
// control packets (§3.5): notification/finish retransmission timers,
// token-window recovery, and the multi-round matching absorbing lost
// RTS/grant/accept packets.
func TestRandomLossRecovery(t *testing.T) {
	for _, lossRate := range []float64{0.001, 0.01} {
		eng := sim.NewEngine(5)
		tp := topo.SmallLeafSpine().Build()
		fab := netsim.New(eng, tp, netsim.Config{
			Spray:          true,
			RandomLossRate: lossRate,
		})
		col := stats.NewCollector(0)
		Attach(fab, DefaultConfig(), col)
		fab.Start()
		tr := workload.AllToAllConfig{
			Hosts: 8, HostRate: tp.HostRate, Load: 0.3,
			Dist: workload.IMC10(), Horizon: 500 * sim.Microsecond, Seed: 6,
		}.Generate()
		fab.Inject(tr)
		// Generous drain: recovery paths take several epochs.
		eng.Run(sim.Time(20 * sim.Millisecond))
		if fab.Counters.CtrlDrops == 0 || fab.Counters.DataDrops == 0 {
			t.Fatalf("loss %.3f: premise broken (ctrl=%d data=%d drops)",
				lossRate, fab.Counters.CtrlDrops, fab.Counters.DataDrops)
		}
		if col.Completed() != col.Started() {
			t.Errorf("loss %.3f: completed %d/%d flows", lossRate, col.Completed(), col.Started())
		}
		if col.DeliveredBytes() != tr.OfferedBytes {
			t.Errorf("loss %.3f: delivered %d of %d bytes", lossRate,
				col.DeliveredBytes(), tr.OfferedBytes)
		}
	}
}

// A lost accept leaves sender and receiver disagreeing (§3.5): the
// receiver clocks tokens anyway and the sender honors them, so data still
// flows. We simulate by injecting heavy control loss and confirming long
// flows finish.
func TestLongFlowUnderControlLoss(t *testing.T) {
	eng := sim.NewEngine(7)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, netsim.Config{Spray: true, RandomLossRate: 0.02})
	col := stats.NewCollector(0)
	Attach(fab, DefaultConfig(), col)
	fab.Start()
	fab.Inject(&workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 0, Dst: 7, Size: 2_000_000, Arrival: 0},
		{ID: 2, Src: 1, Dst: 6, Size: 2_000_000, Arrival: 0},
	}})
	eng.Run(sim.Time(50 * sim.Millisecond))
	if col.Completed() != 2 {
		t.Fatalf("completed %d/2 long flows at 2%% loss", col.Completed())
	}
}

// Unit test of token expiry: tokens from an old epoch are discarded after
// the grace period, tokens from the current epoch are spent.
func TestPopValidTokenExpiry(t *testing.T) {
	eng := sim.NewEngine(1)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, netsim.Config{Spray: true})
	col := stats.NewCollector(0)
	protos := Attach(fab, DefaultConfig(), col)
	fab.Start()
	p := protos[0]
	s := &p.snd

	// Install a fake flow and tokens.
	f := &sendFlow{id: 9, dst: 1, size: 100_000, npkts: 10}
	f.sent = f.sent.grow(10)
	s.flows[9] = f
	s.dataEpoch = 5
	// Advance the engine clock past epoch 5's grace window.
	eng.Run(sim.Time(sim.Duration(6) * p.tm.epochLen))

	old := packet.NewControl(packet.Token, 1, 0, 9)
	old.Epoch = 3 // two epochs stale: dead
	prev := packet.NewControl(packet.Token, 1, 0, 9)
	prev.Epoch = 4 // previous epoch but grace long past: dead
	cur := packet.NewControl(packet.Token, 1, 0, 9)
	cur.Epoch = 5
	s.dataEpoch = 5
	s.tokens = []*packet.Packet{old, prev, cur}

	got := s.popValidToken()
	if got != cur {
		t.Fatalf("popValidToken = %v, want the current-epoch token", got)
	}
	if len(s.tokens) != 0 {
		t.Fatalf("stale tokens left in queue: %d", len(s.tokens))
	}
}

// Unit test of the receiver's candidate selection: retransmissions come
// before fresh sequence numbers, and received seqs are skipped.
func TestRecvFlowCandidateOrder(t *testing.T) {
	f := &recvFlow{npkts: 6, untokenedCnt: 6}
	f.state = f.state.grow(6)
	if s := f.nextCandidate(); s != 0 {
		t.Fatalf("first candidate %d, want 0", s)
	}
	f.state.set(0, seqReceived)
	f.state.set(1, seqTokened)
	if s := f.nextCandidate(); s != 2 {
		t.Fatalf("candidate %d, want 2", s)
	}
	// A reverted seq jumps the queue.
	f.state.set(1, seqUntokened)
	f.retx = append(f.retx, 1)
	if s := f.nextCandidate(); s != 1 {
		t.Fatalf("candidate %d, want reverted 1", s)
	}
	// If the reverted seq has meanwhile been received, it is skipped.
	f.state.set(1, seqReceived)
	if s := f.nextCandidate(); s != 2 {
		t.Fatalf("candidate %d, want 2 after stale retx", s)
	}
}

// The FCT-optimizing first round (§3.5): with two receivers requesting the
// same sender, the one with the smaller remaining flow wins round one.
func TestFCTRoundPrefersShortFlow(t *testing.T) {
	eng := sim.NewEngine(3)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, netsim.Config{Spray: true})
	col := stats.NewCollector(0)
	cfg := DefaultConfig()
	cfg.Channels = 1 // force a single channel so the choice is exclusive
	cfg.Rounds = 1   // only the FCT round
	Attach(fab, cfg, col)
	fab.Start()
	// One sender, two medium flows to different receivers; the smaller
	// must complete first under SRPT matching.
	fab.Inject(&workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 0, Dst: 6, Size: 800_000, Arrival: 0},
		{ID: 2, Src: 0, Dst: 7, Size: 150_000, Arrival: 0},
	}})
	eng.Run(sim.Time(10 * sim.Millisecond))
	recs := col.Records()
	if len(recs) != 2 {
		t.Fatalf("completed %d/2", len(recs))
	}
	var small, big stats.FlowRecord
	for _, r := range recs {
		if r.ID == 2 {
			small = r
		} else {
			big = r
		}
	}
	if small.Finish >= big.Finish {
		t.Fatalf("SRPT round: small flow finished at %v after big at %v", small.Finish, big.Finish)
	}
}

// Demand persists across epochs: a flow too large for one data phase
// keeps re-matching until done.
func TestMultiEpochFlow(t *testing.T) {
	eng := sim.NewEngine(8)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, netsim.Config{Spray: true})
	col := stats.NewCollector(0)
	protos := Attach(fab, DefaultConfig(), col)
	fab.Start()
	// 4 MB ≫ one epoch's channel capacity (≈95 KB × 4 channels).
	fab.Inject(&workload.Trace{Flows: []workload.Flow{
		{ID: 1, Src: 0, Dst: 7, Size: 4_000_000, Arrival: 0},
	}})
	eng.Run(sim.Time(10 * sim.Millisecond))
	if col.Completed() != 1 {
		t.Fatal("multi-epoch flow did not complete")
	}
	// It must have spanned several epochs.
	tm := protos[0].tm
	if col.Records()[0].FCT() < 5*tm.epochLen {
		t.Fatalf("4MB flow finished in %v — faster than line rate allows?", col.Records()[0].FCT())
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[int]string{5: "e", 1: "a", 3: "c"}
	got := sortedKeys(m)
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sortedKeys = %v", got)
		}
	}
}

// The paper's buffering claim (§4.1): matching plus token windows keep at
// most about one BDP of long-flow data queued at any port — "precisely
// what is needed to keep the downlink busy for the next RTT."
func TestBufferingBoundedByBDP(t *testing.T) {
	eng := sim.NewEngine(9)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, netsim.Config{Spray: true})
	col := stats.NewCollector(0)
	Attach(fab, DefaultConfig(), col)
	fab.Start()
	// Long flows only (no short-flow bursts): worst case for queueing is
	// the dense matrix, where every downlink serves multiple senders.
	tr := workload.DenseTMConfig{Hosts: 8, FlowSize: 400_000, Horizon: sim.Millisecond}.Generate()
	fab.Inject(tr)
	eng.Run(sim.Time(4 * sim.Millisecond))
	if col.Completed() != 56 {
		t.Fatalf("completed %d/56", col.Completed())
	}
	bdp := tp.BDP()
	if max := fab.MaxPortQueue(); max > 2*bdp {
		t.Fatalf("max port queue %d bytes exceeds 2 BDP (%d) — token windows not bounding buffering", max, 2*bdp)
	}
}

// Asynchronous clocks (§3.5): hosts with skewed stage tickers must still
// match and complete flows — stragglers' control packets land in the
// wrong stage window and are absorbed by the multi-round randomized
// design.
func TestClockSkewTolerance(t *testing.T) {
	tp := topo.SmallLeafSpine().Build()
	tm := deriveTiming(DefaultConfig(), tp)
	for _, skew := range []sim.Duration{tm.stageLen / 4, tm.stageLen} {
		eng := sim.NewEngine(13)
		fab := netsim.New(eng, tp, netsim.Config{Spray: true})
		col := stats.NewCollector(0)
		cfg := DefaultConfig()
		cfg.MaxClockSkew = skew
		Attach(fab, cfg, col)
		fab.Start()
		tr := workload.AllToAllConfig{
			Hosts: 8, HostRate: tp.HostRate, Load: 0.4,
			Dist: workload.IMC10(), Horizon: 500 * sim.Microsecond, Seed: 14,
		}.Generate()
		fab.Inject(tr)
		eng.Run(sim.Time(10 * sim.Millisecond))
		if col.Completed() != col.Started() {
			t.Errorf("skew %v: completed %d/%d", skew, col.Completed(), col.Started())
		}
		short := stats.Summarize(col.Records(), func(r stats.FlowRecord) bool {
			return r.Size <= tp.BDP()
		})
		if short.Mean > 1.8 {
			t.Errorf("skew %v: short-flow mean slowdown %.2f", skew, short.Mean)
		}
	}
}
