package core

import (
	"sort"

	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/workload"
)

// sender is the transmit half of a dcPIM host: it answers RTS with grants
// during matching, holds and spends tokens during data phases, transmits
// short flows immediately, and runs the notification/finish reliability
// timers.
type sender struct {
	p *Proto //ckpt:skip owner back-pointer, re-established by Attach

	flows     map[uint64]*sendFlow
	freeFlows []*sendFlow //ckpt:skip recycled-record free list, not logical state

	// Token queue (FIFO as issued by receivers, which already order their
	// token streams by SRPT).
	tokens []*packet.Packet
	pacing bool

	// Matching state for epoch matchEpoch (the data phase being built).
	matchEpoch int64
	committed  int          // channels accepted so far
	reserved   int          // channels granted but not yet resolved
	rounds     []roundState // per-round grant bookkeeping
	rtsBuf     [][]*packet.Packet

	dataEpoch int64
}

type roundState struct {
	granted  int
	accepted int
	released bool
}

// sendFlow is the sender-side state of one flow.
type sendFlow struct {
	id      uint64
	dst     int
	size    int64
	arrival sim.Time
	npkts   int
	short   bool

	sent    bitset // 1 bit per packet (slab.go)
	sentCnt int

	notifAcked bool
	notifTimer sim.Timer
	finTimer   sim.Timer
	burstTimer sim.Timer // short-flow burst-serialized finish probe
	finSent    bool
	done       bool
}

// remainingBytes approximates untransmitted payload (the SRPT key carried
// in grants).
func (f *sendFlow) remainingBytes() int64 {
	return int64(f.npkts-f.sentCnt) * packet.PayloadSize
}

func (s *sender) init(p *Proto) {
	s.p = p
	s.flows = make(map[uint64]*sendFlow)
}

// flowArrival starts a new outgoing flow: notify the receiver and, for
// short flows, blast the payload immediately at the short-flow priority.
func (s *sender) flowArrival(fl workload.Flow) {
	f := s.newSendFlow()
	f.id, f.dst, f.size, f.arrival = fl.ID, fl.Dst, fl.Size, fl.Arrival
	f.npkts = packet.PacketsForBytes(fl.Size)
	f.short = fl.Size <= s.p.tm.shortThresh
	f.sent = f.sent.grow(f.npkts)
	s.flows[f.id] = f

	s.sendNotification(f)

	if f.short {
		for seq := 0; seq < f.npkts; seq++ {
			s.transmitData(f, seq, packet.PrioShort)
		}
		// First finish once the burst has serialized out of the NIC. Held
		// in burstTimer so recycling can cancel it: were it left live, a
		// late fire would probe whatever flow reuses the record.
		txAll := sim.TransmissionTime(int(f.size)+f.npkts*packet.HeaderSize,
			s.p.host.LineRate())
		f.burstTimer = s.p.eng.After(txAll+s.p.tm.mtuTime, func() { s.maybeFinish(f) })
	}
}

func (s *sender) sendNotification(f *sendFlow) {
	if f.notifAcked || f.done {
		return
	}
	n := packet.NewControl(packet.Notification, s.p.id, f.dst, f.id)
	n.FlowSize = f.size
	s.p.send(n)
	// Retransmit until acknowledged (§3.5). The period leaves slack above
	// one cRTT so an in-flight ack from the farthest host wins the race.
	f.notifTimer = s.p.eng.After(s.p.tm.ctrlRTT*2, func() { s.sendNotification(f) })
}

func (s *sender) onNotificationAck(pkt *packet.Packet) {
	f := s.flows[pkt.Flow]
	if f == nil {
		return
	}
	f.notifAcked = true
	f.notifTimer.Cancel()
}

// transmitData sends packet seq of f at the given priority.
func (s *sender) transmitData(f *sendFlow, seq int, prio uint8) {
	d := packet.NewData(s.p.id, f.dst, f.id, seq,
		packet.DataPacketSize(f.size, seq), prio)
	d.FlowSize = f.size
	if f.short {
		d.Unsched = true // eligible for Aeolus-style selective drop
	}
	// The short-flow blast is the unscheduled bypass; token-admitted data
	// (including short-flow recovery, re-admitted at data priorities) is
	// scheduled.
	if prio == packet.PrioShort {
		s.p.ins.unschedBytes.Add(int64(d.Size))
	} else {
		s.p.ins.schedBytes.Add(int64(d.Size))
	}
	if !f.sent.get(seq) {
		f.sent.set(seq)
		f.sentCnt++
	}
	s.p.send(d)
}

// maybeFinish emits FinishSender once every packet has been transmitted at
// least once and no tokens for the flow are pending, then keeps
// retransmitting it every control RTT until the receiver confirms (§3.5).
func (s *sender) maybeFinish(f *sendFlow) {
	if f.done || f.sentCnt < f.npkts {
		return
	}
	for _, t := range s.tokens {
		if t.Flow == f.id {
			return // still owe admitted data
		}
	}
	fin := packet.NewControl(packet.FinishSender, s.p.id, f.dst, f.id)
	fin.Count = f.npkts
	fin.FlowSize = f.size
	s.p.send(fin)
	f.finSent = true
	f.finTimer = s.p.eng.After(s.p.tm.ctrlRTT*2, func() { s.maybeFinish(f) })
}

func (s *sender) onFinishReceiver(pkt *packet.Packet) {
	f := s.flows[pkt.Flow]
	if f == nil {
		return
	}
	f.done = true
	delete(s.flows, f.id)
	// Tokens still queued for the flow resolve through s.flows (nil →
	// discarded by popValidToken), never through the record, so it can
	// recycle immediately; recycleSendFlow cancels the timers.
	s.recycleSendFlow(f)
}

// onToken queues an admission token and kicks the pacer. The token
// packet outlives OnPacket (it sits in the queue until spent), so the
// sender takes ownership and releases it in pace/popValidToken.
func (s *sender) onToken(tok *packet.Packet) {
	f := s.flows[tok.Flow]
	if f == nil || f.done {
		return
	}
	// New admissions supersede the finish cycle (retransmissions).
	f.finTimer.Cancel()
	tok.Keep()
	//lint:ignore hotalloc the token FIFO is bounded by the receiver's BDP window per flow; onEpochStart's in-place compaction keeps the backing array, so appends reuse capacity after warmup
	s.tokens = append(s.tokens, tok)
	s.kickPacer()
}

func (s *sender) kickPacer() {
	if s.pacing {
		return
	}
	s.pacing = true
	// Deferred one event: pacing immediately could spend — and release — a
	// token inside its own OnPacket delivery, which the packet ownership
	// contract forbids (the fabric still touches the packet after OnPacket
	// returns).
	s.p.eng.After(0, s.pace)
}

// pace runs every MTU transmission time while tokens are queued: it sends
// one token's data packet per tick, yielding to short-flow bursts already
// occupying the NIC (§3.2 sender-side logic).
func (s *sender) pace() {
	if len(s.tokens) == 0 {
		s.pacing = false
		return
	}
	// Let short flows and control drain first; retry one MTU later.
	if s.p.host.NICQueuedBytes() >= 2*packet.MTU {
		s.p.eng.After(s.p.tm.mtuTime, s.pace)
		return
	}
	tok := s.popValidToken()
	if tok == nil {
		s.pacing = false
		return
	}
	f := s.flows[tok.Flow]
	prio := uint8(tok.Count)
	if prio < packet.PrioDataHigh || prio > packet.PrioDataLow {
		prio = packet.PrioDataHigh
	}
	seq := tok.Seq
	packet.Release(tok) // spent
	s.transmitData(f, seq, prio)
	if f.sentCnt == f.npkts {
		s.maybeFinish(f)
	}
	s.p.eng.After(s.p.tm.mtuTime, s.pace)
}

// popValidToken discards expired tokens (older than the previous epoch's
// grace window, §3.2) and returns the next usable one.
func (s *sender) popValidToken() *packet.Packet {
	now := s.p.eng.Now()
	graceEnd := sim.Time(int64(s.p.tm.epochLen) * s.dataEpoch).Add(s.p.tm.grace)
	for len(s.tokens) > 0 {
		tok := s.tokens[0]
		s.tokens = s.tokens[1:]
		switch {
		case tok.Epoch >= s.dataEpoch:
			// Current (or, with clock skew, upcoming) phase: usable.
		case tok.Epoch == s.dataEpoch-1 && now <= graceEnd:
			// Previous phase, still within the grace period.
		default:
			packet.Release(tok) // expired
			continue
		}
		if f := s.flows[tok.Flow]; f == nil || f.done {
			packet.Release(tok)
			continue
		}
		return tok
	}
	return nil
}

// ---- matching phase (sender side: grant) ----

func (s *sender) onEpochStart(e int64) {
	s.dataEpoch = e
	s.matchEpoch = e + 1
	s.committed = 0
	s.reserved = 0
	s.rounds = make([]roundState, s.p.cfg.Rounds)
	for _, buf := range s.rtsBuf {
		for _, r := range buf {
			packet.Release(r) // request never granted before its epoch ended
		}
	}
	s.rtsBuf = make([][]*packet.Packet, s.p.cfg.Rounds)
	// Tokens from before the previous epoch can never become valid again;
	// drop them eagerly so the queue stays short.
	live := s.tokens[:0]
	for _, t := range s.tokens {
		if t.Epoch >= e-1 {
			live = append(live, t)
		} else {
			packet.Release(t)
		}
	}
	s.tokens = live
	if len(s.tokens) > 0 {
		s.kickPacer()
	}
}

// onRTS buffers a matching request for processing at the next grant tick.
// Stale requests (wrong epoch or a round whose grant stage has passed) are
// dropped — the multi-round design absorbs the loss (§3.3).
func (s *sender) onRTS(rts *packet.Packet) {
	if rts.Epoch != s.matchEpoch || rts.Round < 0 || rts.Round >= s.p.cfg.Rounds {
		return
	}
	rts.Keep() // buffered until the round's grant tick
	//lint:ignore hotalloc one append per RTS per matching round (epoch rate, not packet rate), bounded by the channel budget
	s.rtsBuf[rts.Round] = append(s.rtsBuf[rts.Round], rts)
}

// onAccept finalizes granted channels. Late accepts (after the grant
// budget was released) are still honored: the receiver considers itself
// matched and will clock tokens, which the sender always obeys (§3.5).
func (s *sender) onAccept(acc *packet.Packet) {
	if acc.Epoch != s.matchEpoch || acc.Round < 0 || acc.Round >= len(s.rounds) {
		return
	}
	s.committed += acc.Channels
	rs := &s.rounds[acc.Round]
	rs.accepted += acc.Channels
	if !rs.released {
		s.reserved -= acc.Channels
	}
}

// grantStage processes the RTS buffered for the given round: it first
// releases channel budget reserved by the previous round's unaccepted
// grants, then distributes free channels over the requests — by smallest
// remaining flow in the FCT-optimizing round, uniformly at random
// otherwise (§3.1, §3.5).
func (s *sender) grantStage(epoch int64, round int) {
	if epoch != s.matchEpoch {
		return
	}
	if round > 0 {
		rs := &s.rounds[round-1]
		if !rs.released {
			s.reserved -= rs.granted - rs.accepted
			rs.released = true
		}
	}
	// Drain this round's requests plus any stragglers from earlier rounds
	// (skewed clocks or queueing can land an RTS after its round's tick;
	// processing it in the next round is the "catch up in the remaining
	// rounds" behaviour the design relies on).
	var reqs []*packet.Packet
	for j := 0; j <= round; j++ {
		reqs = append(reqs, s.rtsBuf[j]...)
		s.rtsBuf[j] = nil
	}
	if len(reqs) == 0 {
		return
	}
	free := s.p.cfg.Channels - s.committed - s.reserved
	if free <= 0 {
		for _, r := range reqs {
			packet.Release(r)
		}
		return
	}
	if round == 0 && s.p.cfg.FCTRound {
		sort.SliceStable(reqs, func(i, j int) bool {
			return reqs[i].Remaining < reqs[j].Remaining
		})
	} else {
		rng := s.p.rng
		rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })
	}
	for _, r := range reqs {
		if free <= 0 {
			break
		}
		give := r.Channels
		if give > free {
			give = free
		}
		if give <= 0 {
			continue
		}
		g := packet.NewControl(packet.Grant, s.p.id, r.Src, 0)
		g.Channels = give
		g.Round = round
		g.Epoch = epoch
		g.Remaining = s.minRemainingTo(r.Src)
		s.p.send(g)
		free -= give
		s.reserved += give
		s.rounds[round].granted += give
	}
	for _, r := range reqs {
		packet.Release(r) // drained this round, granted or not
	}
}

// minRemainingTo returns the smallest remaining size among this sender's
// unfinished flows to dst (SRPT key for the receiver's accept choice).
func (s *sender) minRemainingTo(dst int) int64 {
	best := int64(1) << 62
	//lint:deterministic min fold over int64 remaining: order-insensitive
	for _, f := range s.flows {
		if f.dst != dst || f.done {
			continue
		}
		if r := f.remainingBytes(); r < best {
			best = r
		}
	}
	return best
}
