package core

import (
	"sort"

	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
)

// seq states within a receiver flow.
const (
	seqUntokened uint8 = iota // needs admission (or unsolicited arrival)
	seqTokened                // token sent, data not yet received
	seqReceived
)

// recvFlow is the receiver-side state of one flow.
type recvFlow struct {
	id      uint64
	src     int
	size    int64
	arrival sim.Time
	npkts   int
	short   bool

	state        twoBits    // 2 bits per packet: seqUntokened/Tokened/Received (slab.go)
	tokened      []tokenRef // FIFO of issued tokens (lazy cleanup)
	retx         []int32    // reverted seqs awaiting re-admission
	nextNew      int        // lowest never-tokened seq
	senderIdx    int        //ckpt:skip position in the derived bySender index, rebuilt with it
	outstanding  int        // live tokens (sent, data not received)
	untokenedCnt int
	receivedCnt  int
	receivedByte int64

	recoverTimer sim.Timer // short-flow recovery probe (cancelled on recycle)
	eligible     bool      // participates in matching demand
	done         bool
}

// tokenRef packs one issued token to 8 bytes — these sit in per-flow
// FIFOs across every live flow, so width matters at 10^6–10^7 concurrent
// flows. seq is a packet index (flows are < 2^31 packets by far); epoch
// int32 holds ~10^9 matching epochs, i.e. years of simulated time at the
// paper's epoch length.
type tokenRef struct {
	seq   int32
	epoch int32
}

func (f *recvFlow) remaining() int64 { return f.size - f.receivedByte }

// demandBytes is the unadmitted payload used for channel asks.
func (f *recvFlow) demandBytes() int64 {
	b := int64(f.untokenedCnt) * packet.PayloadSize
	if r := f.remaining(); b > r {
		b = r
	}
	return b
}

// nextCandidate returns the lowest seq needing a token, or -1.
func (f *recvFlow) nextCandidate() int {
	for len(f.retx) > 0 {
		if s := int(f.retx[0]); f.state.get(s) == seqUntokened {
			return s
		}
		f.retx = f.retx[1:]
	}
	for f.nextNew < f.npkts && f.state.get(f.nextNew) != seqUntokened {
		f.nextNew++
	}
	if f.nextNew < f.npkts {
		return f.nextNew
	}
	return -1
}

// tokenLoop clocks tokens to one matched sender during a data phase.
type tokenLoop struct {
	src      int
	channels int
	interval sim.Duration
	epoch    int64
	stalled  bool
	timer    sim.Timer
}

// receiver is the admit half of a dcPIM host: it initiates matching with
// RTS, accepts grants, clocks tokens to matched senders, and detects and
// recovers losses.
type receiver struct {
	p *Proto //ckpt:skip owner back-pointer, re-established by Attach

	flows map[uint64]*recvFlow
	// bySender lists each sender's live flows (swap-deleted via
	// recvFlow.senderIdx on completion) — a slice instead of a nested map
	// so the token loop's per-fire scan walks a dense array. Every fold
	// over it is order-insensitive or id-tie-broken, so the slice's
	// mutation order cannot leak into the packet stream.
	bySender map[int][]*recvFlow //ckpt:skip derived index over flows, rebuilt from the captured flow records
	// doneFlows remembers completed flow ids forever: duplicates and
	// finish retransmissions must keep resolving as "done" after the flow
	// record itself has been recycled. One map entry per completed flow
	// is the irreducible long-run cost.
	doneFlows map[uint64]struct{}
	freeFlows []*recvFlow //ckpt:skip recycled-record free list, not logical state

	// Matching state for epoch matchEpoch.
	matchEpoch  int64
	used        int // channels accepted so far
	planned     map[int]int64
	grantBuf    [][]*packet.Packet
	matchedNext map[int]int

	// Current data phase.
	matchedNow   map[int]int
	loops        map[int]*tokenLoop
	matchedTotal int // channels in matchedNow (telemetry bookkeeping)
}

func (r *receiver) init(p *Proto) {
	r.p = p
	r.flows = make(map[uint64]*recvFlow)
	r.bySender = make(map[int][]*recvFlow)
	r.doneFlows = make(map[uint64]struct{})
	r.planned = make(map[int]int64)
	r.matchedNow = make(map[int]int)
	r.matchedNext = make(map[int]int)
	r.loops = make(map[int]*tokenLoop)
}

// ensure returns the live flow state for pkt, creating it lazily (data
// can arrive before its notification under spraying), or nil when the
// flow already completed — callers must treat nil as "done, ignore".
func (r *receiver) ensure(pkt *packet.Packet) *recvFlow {
	if f, ok := r.flows[pkt.Flow]; ok {
		return f
	}
	if _, done := r.doneFlows[pkt.Flow]; done {
		return nil
	}
	n := packet.PacketsForBytes(pkt.FlowSize)
	f := r.newRecvFlow()
	f.id, f.src, f.size, f.arrival = pkt.Flow, pkt.Src, pkt.FlowSize, pkt.SentAt
	f.npkts, f.short = n, pkt.FlowSize <= r.p.tm.shortThresh
	f.state = f.state.grow(n)
	f.untokenedCnt = n
	r.flows[f.id] = f
	f.senderIdx = len(r.bySender[f.src])
	//lint:ignore hotalloc per-flow admission, not per-packet; swap-delete in complete keeps the per-sender slice's capacity for reuse
	r.bySender[f.src] = append(r.bySender[f.src], f)

	if f.short {
		// Short flows arrive unsolicited; if anything is missing after a
		// full data RTT, recover through the matching path (§3.2). Held in
		// recoverTimer so recycling can cancel it before the record is
		// reused.
		//lint:ignore hotalloc one closure per short-flow admission, not per packet; it needs f and fires at most once
		f.recoverTimer = r.p.eng.After(r.p.tm.dataRTT, func() {
			if !f.done {
				f.eligible = true
				r.addPlanned(f.src, f.demandBytes())
				r.resumeLoop(f.src)
			}
		})
	} else {
		f.eligible = true
		r.addPlanned(f.src, f.demandBytes())
		// A matched-but-idle token loop can pick the new flow up
		// mid-phase.
		r.resumeLoop(f.src)
	}
	return f
}

// addPlanned adds late-arriving demand into the in-progress matching.
func (r *receiver) addPlanned(src int, bytes int64) {
	if bytes > 0 {
		r.planned[src] += bytes
	}
}

func (r *receiver) onNotification(n *packet.Packet) {
	r.ensure(n)
	ack := packet.NewControl(packet.NotificationAck, r.p.id, n.Src, n.Flow)
	r.p.send(ack)
}

func (r *receiver) onFinishSender(fin *packet.Packet) {
	if _, done := r.doneFlows[fin.Flow]; !done {
		return // incomplete or unknown: stay silent, recovery will finish the flow
	}
	out := packet.NewControl(packet.FinishReceiver, r.p.id, fin.Src, fin.Flow)
	r.p.send(out)
}

func (r *receiver) onData(d *packet.Packet) {
	f := r.ensure(d)
	if f == nil || d.Seq < 0 || d.Seq >= f.npkts || f.state.get(d.Seq) == seqReceived {
		return
	}
	if f.state.get(d.Seq) == seqTokened {
		f.outstanding--
		r.p.ins.tokensOutstanding.Add(-1)
	} else {
		f.untokenedCnt--
	}
	f.state.set(d.Seq, seqReceived)
	f.receivedCnt++
	payload := int64(d.Size) - packet.HeaderSize
	if d.Trimmed {
		payload = 0 // a trimmed packet delivers no payload (defensive; dcPIM runs without trimming)
	}
	f.receivedByte += payload
	r.p.col.Delivered(r.p.eng.Now(), payload)

	if f.receivedByte >= f.size {
		r.complete(f)
		return
	}
	// Token clocking: once the window fills, each received data packet
	// releases the next token (§3.2).
	r.resumeLoop(d.Src)
}

//lint:coldpath runs once per flow completion, amortized across the flow's packets; FlowDone and UnloadedFCT costs live here, off the per-packet path
func (r *receiver) complete(f *recvFlow) {
	f.done = true
	opt := r.p.host.Topo().UnloadedFCT(f.src, r.p.id, f.size)
	r.p.col.FlowDone(stats.FlowRecord{
		ID: f.id, Src: int32(f.src), Dst: int32(r.p.id), Size: f.size,
		Arrival: f.arrival, Finish: r.p.eng.Now(), Optimal: opt,
	})
	// Remember only the id — duplicates and finish retransmissions
	// resolve through doneFlows — and recycle the whole record.
	r.doneFlows[f.id] = struct{}{}
	delete(r.flows, f.id)
	peers := r.bySender[f.src]
	last := len(peers) - 1
	if i := f.senderIdx; i != last {
		moved := peers[last]
		peers[i] = moved
		moved.senderIdx = i
	}
	peers[last] = nil
	r.bySender[f.src] = peers[:last]
	r.recycleRecvFlow(f)
}

// ---- data phase: token clocking ----

func (r *receiver) onEpochStart(e int64) {
	// Revert tokens from finished phases whose data never arrived: they
	// re-enter the demand pool and are re-admitted at the window start
	// when the sender is next matched (§3.2 loss recovery). Per-flow state
	// is independent, so map order is harmless here.
	//lint:deterministic per-flow reverts touch disjoint state; counters are commutative sums
	for _, f := range r.flows {
		if f.done {
			continue
		}
		for len(f.tokened) > 0 && int64(f.tokened[0].epoch) < e {
			tr := f.tokened[0]
			f.tokened = f.tokened[1:]
			if f.state.get(int(tr.seq)) != seqTokened {
				continue // already received
			}
			f.state.set(int(tr.seq), seqUntokened)
			f.untokenedCnt++
			f.outstanding--
			r.p.ins.tokensReverted.Inc()
			r.p.ins.tokensOutstanding.Add(-1)
			f.retx = append(f.retx, tr.seq)
		}
	}
	// Swap in the matching computed during the previous epoch.
	//lint:deterministic cancel is idempotent per loop; heap extraction order is keyed by (time,seq), not removal order
	for _, l := range r.loops {
		l.timer.Cancel()
	}
	r.matchedNow = r.matchedNext
	r.matchedNext = make(map[int]int)
	total := 0
	//lint:deterministic int sum: map order cannot affect the result
	for _, ch := range r.matchedNow {
		total += ch
	}
	r.p.ins.matchedChannels.Add(int64(total - r.matchedTotal))
	r.matchedTotal = total
	r.loops = make(map[int]*tokenLoop, len(r.matchedNow))
	for _, src := range sortedKeys(r.matchedNow) {
		ch := r.matchedNow[src]
		if ch <= 0 {
			continue
		}
		l := &tokenLoop{
			src: src, channels: ch, epoch: e,
			interval: sim.Duration(int64(r.p.tm.mtuTime) * int64(r.p.cfg.Channels) / int64(ch)),
		}
		r.loops[src] = l
		r.fireLoop(l)
	}
}

// window returns the token window for a flow whose sender holds ch
// channels: 1 BDP scaled by the matched share (§3.4).
func (r *receiver) window(ch int) int {
	w := r.p.tm.windowPkts * ch / r.p.cfg.Channels
	if w < 1 {
		w = 1
	}
	return w
}

// fireLoop issues one token for the loop's sender, choosing the eligible
// flow with the smallest remaining bytes, then self-schedules. With no
// admissible work (window full or nothing pending) the loop stalls until
// data arrival or new demand resumes it.
func (r *receiver) fireLoop(l *tokenLoop) {
	if l.epoch != r.p.epoch {
		return // stale chain from a previous phase
	}
	var best *recvFlow
	var bestSeq int
	w := r.window(l.channels)
	for _, f := range r.bySender[l.src] {
		if !f.eligible || f.outstanding >= w {
			continue
		}
		seq := f.nextCandidate()
		if seq < 0 {
			continue
		}
		// SRPT with a flow-id tie-break so map order cannot leak into
		// the packet stream.
		if best == nil || f.remaining() < best.remaining() ||
			(f.remaining() == best.remaining() && f.id < best.id) {
			best, bestSeq = f, seq
		}
	}
	if best == nil {
		l.stalled = true
		l.timer = sim.Timer{}
		return
	}
	r.issueToken(l, best, bestSeq)
	l.stalled = false
	// Argument-form scheduling: the loop re-arms once per token issued
	// (line rate), so a closure here would allocate per data packet —
	// exactly what AfterFunc's event-stored arguments avoid (hotalloc
	// flagged the closure form this replaced).
	l.timer = r.p.eng.AfterFunc(l.interval, fireLoopFunc, r, l, 0)
}

// fireLoopFunc is the package-level AfterFunc trampoline for fireLoop:
// both arguments are pointers, so storing them in the event's any slots
// does not allocate.
func fireLoopFunc(a, b any, _ int) { a.(*receiver).fireLoop(b.(*tokenLoop)) }

func (r *receiver) issueToken(l *tokenLoop, f *recvFlow, seq int) {
	if len(f.retx) > 0 && int(f.retx[0]) == seq {
		f.retx = f.retx[1:]
	}
	f.state.set(seq, seqTokened)
	f.untokenedCnt--
	f.outstanding++
	r.p.ins.tokensIssued.Inc()
	r.p.ins.tokensOutstanding.Add(1)
	//lint:ignore hotalloc the tokened FIFO is bounded by the BDP window and recycleRecvFlow keeps its backing array, so appends reuse capacity after warmup
	f.tokened = append(f.tokened, tokenRef{seq: int32(seq), epoch: int32(l.epoch)})

	tok := packet.NewControl(packet.Token, r.p.id, f.src, f.id)
	tok.Seq = seq
	tok.Epoch = l.epoch
	tok.Count = int(prioForRemaining(f.remaining(), r.p.tm.bdp))
	tok.CumAck = f.receivedCnt
	r.p.send(tok)
}

// resumeLoop restarts a stalled token loop for src (data-clocked tokens
// and mid-phase demand arrivals).
func (r *receiver) resumeLoop(src int) {
	if l, ok := r.loops[src]; ok && l.stalled {
		r.fireLoop(l)
	}
}

// ---- matching phase (receiver side: request + accept) ----

// requestStage opens round `round` of the matching for `epoch` by sending
// RTS to every sender with unplanned demand, within the remaining channel
// budget (§3.1, §3.4).
func (r *receiver) requestStage(epoch int64, round int) {
	if round == 0 {
		r.matchEpoch = epoch
		r.used = 0
		for _, buf := range r.grantBuf {
			for _, g := range buf {
				packet.Release(g) // offer expired with its epoch
			}
		}
		r.grantBuf = make([][]*packet.Packet, r.p.cfg.Rounds)
		r.matchedNext = make(map[int]int)
		r.planned = r.computePlanned()
	}
	free := r.p.cfg.Channels - r.used
	if free <= 0 {
		return
	}
	// Iterate senders in id order: map order would make packet emission
	// (and thus the whole run) non-deterministic.
	for _, src := range sortedKeys(r.planned) {
		bytes := r.planned[src]
		if bytes <= 0 {
			continue
		}
		want := int((bytes + r.p.tm.channelBytes - 1) / r.p.tm.channelBytes)
		if want > free {
			want = free
		}
		rts := packet.NewControl(packet.RTS, r.p.id, src, 0)
		rts.Channels = want
		rts.Round = round
		rts.Epoch = epoch
		rts.Remaining = r.minRemainingFrom(src)
		r.p.send(rts)
	}
}

// computePlanned rebuilds per-sender unadmitted demand, net of what the
// just-started data phase is projected to deliver (§3.4's outstanding-byte
// bookkeeping).
func (r *receiver) computePlanned() map[int]int64 {
	planned := make(map[int]int64)
	//lint:deterministic builds a map keyed per sender; consumers iterate it via sortedKeys
	for src, flows := range r.bySender {
		var sum int64
		for _, f := range flows {
			if !f.eligible {
				continue
			}
			sum += f.demandBytes()
		}
		if ch := r.matchedNow[src]; ch > 0 {
			sum -= int64(ch) * r.p.tm.channelBytes
		}
		if sum > 0 {
			planned[src] = sum
		}
	}
	return planned
}

func (r *receiver) minRemainingFrom(src int) int64 {
	best := int64(1) << 62
	for _, f := range r.bySender[src] {
		if !f.eligible {
			continue
		}
		if rem := f.remaining(); rem < best {
			best = rem
		}
	}
	return best
}

func (r *receiver) onGrant(g *packet.Packet) {
	if g.Epoch != r.matchEpoch || g.Round < 0 || g.Round >= len(r.grantBuf) {
		return
	}
	g.Keep() // buffered until the round's accept tick
	//lint:ignore hotalloc one append per grant per matching round (epoch rate, not packet rate), bounded by the channel budget
	r.grantBuf[g.Round] = append(r.grantBuf[g.Round], g)
}

// acceptStage resolves the grants of the given round: smallest remaining
// flow first in the FCT round, random otherwise, within the channel
// budget (§3.4).
func (r *receiver) acceptStage(epoch int64, round int) {
	if epoch != r.matchEpoch || round < 0 || round >= len(r.grantBuf) {
		return
	}
	// Include stragglers from earlier rounds (clock skew, queueing): a
	// late grant is still a valid offer for this epoch's matching.
	var grants []*packet.Packet
	for j := 0; j <= round; j++ {
		grants = append(grants, r.grantBuf[j]...)
		r.grantBuf[j] = nil
	}
	if len(grants) == 0 {
		return
	}
	if round == 0 && r.p.cfg.FCTRound {
		sort.SliceStable(grants, func(i, j int) bool {
			return grants[i].Remaining < grants[j].Remaining
		})
	} else {
		rng := r.p.rng
		rng.Shuffle(len(grants), func(i, j int) { grants[i], grants[j] = grants[j], grants[i] })
	}
	free := r.p.cfg.Channels - r.used
	for _, g := range grants {
		if free <= 0 {
			break
		}
		take := g.Channels
		if take > free {
			take = free
		}
		acc := packet.NewControl(packet.Accept, r.p.id, g.Src, 0)
		acc.Channels = take
		acc.Round = round
		acc.Epoch = epoch
		r.p.send(acc)
		r.p.ins.roundAccept(round, take)
		r.used += take
		free -= take
		r.matchedNext[g.Src] += take
		r.planned[g.Src] -= int64(take) * r.p.tm.channelBytes
	}
	for _, g := range grants {
		packet.Release(g) // drained this round, accepted or not
	}
}

// sortedKeys returns map keys in ascending order, for deterministic
// iteration wherever packets are emitted.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
