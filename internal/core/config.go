// Package core implements the dcPIM transport protocol (the paper's
// contribution): a proactive, receiver-driven datacenter transport whose
// hosts run PIM-style matching phases pipelined with token-clocked data
// transmission phases.
//
// Protocol summary (paper §3):
//
//   - Time is divided into fixed-length epochs of (2r+1)·β·cRTT/2. During
//     epoch e, hosts exchange RTS/Grant/Accept control packets to compute
//     the matching used by the data phase of epoch e+1 (pipelining, §3.3),
//     with the accept stage of round j overlapped with the request stage
//     of round j+1.
//   - Each host has k channels (§3.4); matching allocates channels, so a
//     receiver may admit several senders per phase (and vice versa), each
//     at 1/k of the link rate.
//   - Matched receivers admit data with per-packet tokens inside a sliding
//     token window (§3.2); token clocking degrades gracefully to
//     one-token-per-received-packet under congestion.
//   - Flows no larger than the short-flow threshold (1 BDP) bypass
//     matching entirely and are transmitted immediately at the
//     second-highest priority; lost short-flow packets are recovered
//     through the matching path (§3.2).
//   - All control packets travel at the highest priority; notification and
//     finish packets are retransmitted on an RTT timer (§3.5).
package core

import (
	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/topo"
)

// Config holds dcPIM's protocol parameters (§3.6). The zero value is not
// usable; call DefaultConfig.
type Config struct {
	// Rounds is r, the total number of matching rounds per epoch
	// (including the FCT-optimizing first round if FCTRound is set).
	Rounds int
	// Channels is k, the per-host channel count. The paper recommends
	// k = r (§3.6).
	Channels int
	// Beta is the per-stage slack multiplier on cRTT/2 (§3.3).
	Beta float64
	// ShortFlowBytes is the bypass threshold; flows of at most this many
	// payload bytes skip matching. 0 selects 1 BDP.
	ShortFlowBytes int64
	// FCTRound enables the first-round smallest-remaining-flow
	// optimization (§3.5).
	FCTRound bool
	// WindowBytes is the per-flow token window. 0 selects 1 BDP.
	WindowBytes int64
	// MaxClockSkew desynchronizes host clocks: each host offsets its
	// stage ticker by a uniform random delay in [0, MaxClockSkew). The
	// paper's design tolerates loose synchronization (§3.5: PTP-level
	// sub-microsecond skew, with randomized multi-round matching
	// absorbing stragglers); tests use this to verify it.
	MaxClockSkew sim.Duration
}

// DefaultConfig returns the paper's default parameters: one FCT-optimizing
// round plus three utilization-optimizing rounds (r=4), k=4 channels,
// β=1.3, and 1-BDP short-flow threshold and token window.
func DefaultConfig() Config {
	return Config{Rounds: 4, Channels: 4, Beta: 1.3, FCTRound: true}
}

// timing captures the derived per-topology constants every dcPIM host
// shares.
type timing struct {
	stageLen sim.Duration // β·cRTT/2
	epochLen sim.Duration // (2r+1)·stageLen
	stages   int          // 2r+1
	mtuTime  sim.Duration // MTU serialization at access rate
	ctrlRTT  sim.Duration
	dataRTT  sim.Duration
	grace    sim.Duration // token grace past phase end: cRTT/2

	bdp          int64 // bytes
	shortThresh  int64
	windowPkts   int   // token window in packets
	channelBytes int64 // bytes one channel carries in one data phase
}

func deriveTiming(cfg Config, t *topo.Topology) timing {
	ctrlRTT := t.CtrlRTT()
	stage := sim.Duration(float64(ctrlRTT) / 2 * cfg.Beta)
	stages := 2*cfg.Rounds + 1
	epoch := stage * sim.Duration(stages)
	bdp := t.BDP()
	short := cfg.ShortFlowBytes
	if short == 0 {
		short = bdp
	}
	window := cfg.WindowBytes
	if window == 0 {
		window = bdp
	}
	wpkts := packet.PacketsForBytes(window)
	if wpkts < 1 {
		wpkts = 1
	}
	chanBytes := int64(t.HostRate / 8 * epoch.Seconds() / float64(cfg.Channels))
	return timing{
		stageLen:     stage,
		epochLen:     epoch,
		stages:       stages,
		mtuTime:      sim.TransmissionTime(packet.MTU, t.HostRate),
		ctrlRTT:      ctrlRTT,
		dataRTT:      t.DataRTT(),
		grace:        ctrlRTT / 2,
		bdp:          bdp,
		shortThresh:  short,
		windowPkts:   wpkts,
		channelBytes: chanBytes,
	}
}

// prioForRemaining maps a flow's remaining bytes to a data priority class:
// fewer remaining bytes → higher priority (§3.4's intelligent priority
// assignment), within the classes left after control and short-flow
// traffic.
func prioForRemaining(remaining, bdp int64) uint8 {
	switch {
	case remaining <= 4*bdp:
		return packet.PrioDataHigh
	case remaining <= 16*bdp:
		return packet.PrioDataHigh + 1
	case remaining <= 64*bdp:
		return packet.PrioDataHigh + 2
	case remaining <= 256*bdp:
		return packet.PrioDataHigh + 3
	default:
		return packet.PrioDataHigh + 4
	}
}
