package core

import (
	"strings"
	"testing"

	"dcpim/internal/faults"
	"dcpim/internal/netsim"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

// Structured-fault hardening (§3.5 beyond i.i.d. loss): links that stay
// dark for multiple matching epochs, switch reboots that destroy whole
// buffers, and host blackouts. In every case the multi-round matching
// plus the notification/finish/token recovery timers must complete every
// flow once connectivity returns, and the conservation auditor must see
// no leaked or double-freed packets on the new fault paths.

// faultScenario runs an 8-host all-to-all workload under a fault
// schedule and asserts full completion and a clean audit.
func faultScenario(t *testing.T, seed int64, text string, drain sim.Duration) {
	t.Helper()
	eng := sim.NewEngine(seed)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, netsim.Config{Spray: true, Audit: true})
	col := stats.NewCollector(0)
	Attach(fab, DefaultConfig(), col)
	fab.Start()
	sched, err := faults.ParseSchedule(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(tp); err != nil {
		t.Fatal(err)
	}
	faults.Install(fab, sched)
	tr := workload.AllToAllConfig{
		Hosts: 8, HostRate: tp.HostRate, Load: 0.3,
		Dist: workload.IMC10(), Horizon: 300 * sim.Microsecond, Seed: seed,
	}.Generate()
	fab.Inject(tr)
	eng.Run(sim.Time(drain))
	if col.Completed() != col.Started() {
		t.Errorf("completed %d/%d flows", col.Completed(), col.Started())
	}
	if col.DeliveredBytes() != tr.OfferedBytes {
		t.Errorf("delivered %d of %d bytes", col.DeliveredBytes(), tr.OfferedBytes)
	}
	if errs := fab.AuditVerify(); len(errs) != 0 {
		t.Errorf("conservation audit:\n%s", strings.Join(errs, "\n"))
	}
}

// A ToR downlink dark for ~100 µs — several matching epochs, not one
// token window. Every flow to the disconnected host must eventually
// finish: tokens issued into the dark interval revert at epoch starts
// and are re-issued after restore.
func TestDarkDownlinkMultiEpoch(t *testing.T) {
	faultScenario(t, 11, "linkdown sw=0 port=0 at=30us dur=100us", 30*sim.Millisecond)
}

// A core (spine→leaf) link flapping twice. Spraying keeps using the dead
// spine from the other direction, so data and control on that path park
// until restore.
func TestCoreLinkFlaps(t *testing.T) {
	faultScenario(t, 12,
		"linkdown sw=2 port=0 at=20us dur=60us\nlinkdown sw=2 port=1 at=150us dur=60us",
		30*sim.Millisecond)
}

// A cold ToR reboot destroys every parked packet of rack 0 — data,
// tokens, grants, finish handshakes — and blackholes arrivals for 50 µs.
func TestToRRebootColdRecovery(t *testing.T) {
	faultScenario(t, 13, "reboot sw=0 at=40us dur=50us drain=drop", 40*sim.Millisecond)
}

// A persistently degraded core link (5% loss for a long window) must
// behave no worse than the i.i.d. random-loss case.
func TestDegradedCoreLinkRecovery(t *testing.T) {
	faultScenario(t, 14, "degrade sw=3 port=1 at=10us rate=0.05 dur=300us", 30*sim.Millisecond)
}

// A host pausing mid-transfer (VM migration blackout): its own sends park
// in the NIC; inbound tokens keep arriving and expire harmlessly.
func TestHostPauseRecovery(t *testing.T) {
	faultScenario(t, 15, "hostpause host=3 at=25us dur=80us", 30*sim.Millisecond)
}

// A total-loss burst across both directions of a downlink — unlike
// linkdown, packets are destroyed rather than parked, exercising token
// expiry and retransmission instead of plain buffering.
func TestLossBurstRecovery(t *testing.T) {
	faultScenario(t, 16, "burst sw=1 port=0 at=30us dur=40us rate=1.0", 30*sim.Millisecond)
}

// Compound worst case: a generated intensity-3 schedule (flaps, bursts,
// degrades, a reboot, host pauses) over a longer horizon.
func TestGeneratedFaultStorm(t *testing.T) {
	eng := sim.NewEngine(17)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, netsim.Config{Spray: true, Audit: true})
	col := stats.NewCollector(0)
	Attach(fab, DefaultConfig(), col)
	fab.Start()
	horizon := 400 * sim.Microsecond
	sched := faults.Generate(faults.Intensity(3, 99, horizon), tp)
	if err := sched.Validate(tp); err != nil {
		t.Fatal(err)
	}
	faults.Install(fab, sched)
	tr := workload.AllToAllConfig{
		Hosts: 8, HostRate: tp.HostRate, Load: 0.3,
		Dist: workload.IMC10(), Horizon: horizon, Seed: 17,
	}.Generate()
	fab.Inject(tr)
	eng.Run(sim.Time(60 * sim.Millisecond))
	if col.Completed() != col.Started() {
		t.Errorf("completed %d/%d flows under fault storm (fault drops %d)",
			col.Completed(), col.Started(), fab.Counters.FaultDrops)
	}
	if errs := fab.AuditVerify(); len(errs) != 0 {
		t.Errorf("conservation audit:\n%s", strings.Join(errs, "\n"))
	}
}
