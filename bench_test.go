// Benchmarks: one per paper artifact (Table 1 setup cost, Figures 3–7,
// Theorem 1) plus microbenchmarks of the substrate. Each figure bench
// runs its experiment end-to-end at reduced scale, so `go test -bench=.`
// regenerates a quick version of the whole evaluation; use
// cmd/experiments for full fidelity.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"dcpim/internal/core"
	"dcpim/internal/experiments"
	"dcpim/internal/matching"
	"dcpim/internal/netsim"
	"dcpim/internal/packet"
	"dcpim/internal/sim"
	"dcpim/internal/stats"
	"dcpim/internal/topo"
	"dcpim/internal/workload"
)

// benchOpts shrinks experiments to benchmark-friendly scale.
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 1, Scale: 0.05, Hosts: 8}
}

func benchExperiment(b *testing.B, id string, opt experiments.Options) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i + 1)
		if err := e.Run(opt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Theorem 1 ----

func BenchmarkTheorem1(b *testing.B) { benchExperiment(b, "theorem1", benchOpts()) }

// ---- Figure 3 ----

func BenchmarkFig3aMaxLoad(b *testing.B)       { benchExperiment(b, "fig3a", benchOpts()) }
func BenchmarkFig3bMeanSlowdown(b *testing.B)  { benchExperiment(b, "fig3b", benchOpts()) }
func BenchmarkFig3cdeSizeBuckets(b *testing.B) { benchExperiment(b, "fig3cde", benchOpts()) }

// ---- Figure 4 ----

func BenchmarkFig4aBurstyMicrobench(b *testing.B) {
	o := benchOpts()
	o.Hosts = 0 // needs ≥3 racks
	o.Scale = 0.15
	benchExperiment(b, "fig4a", o)
}

func BenchmarkFig4bWorstCaseBDP1(b *testing.B) { benchExperiment(b, "fig4b", benchOpts()) }
func BenchmarkFig4cDenseTM(b *testing.B)       { benchExperiment(b, "fig4c", benchOpts()) }

// ---- Figure 5 ----

func BenchmarkFig5abOversubscribed(b *testing.B) { benchExperiment(b, "fig5ab", benchOpts()) }
func BenchmarkFig5cdFatTree(b *testing.B)        { benchExperiment(b, "fig5cd", benchOpts()) }

// ---- Figure 6 ----

func BenchmarkFig6Sensitivity(b *testing.B) { benchExperiment(b, "fig6", benchOpts()) }

// ---- Figure 7 ----

func BenchmarkFig7Testbed(b *testing.B) {
	o := benchOpts()
	o.Scale = 0.02
	benchExperiment(b, "fig7", o)
}

// ---- §5 and ablations ----

func BenchmarkFastpassComparison(b *testing.B) { benchExperiment(b, "fastpass", benchOpts()) }
func BenchmarkAblations(b *testing.B)          { benchExperiment(b, "ablation", benchOpts()) }

// ---- Substrate microbenchmarks ----

// BenchmarkPIMMatching measures the abstract matching algorithm at the
// paper's scale (144 hosts, sparse) through the matcher registry.
func BenchmarkPIMMatching(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	g := matching.RandomGraph(rng, 144, 144, 4)
	m, err := matching.MustLookup("dcpim").New(matching.Options{Rounds: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(g, rng)
	}
}

// BenchmarkChannelMatching measures the k-channel variant.
func BenchmarkChannelMatching(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	g := matching.RandomGraph(rng, 144, 144, 4)
	m, err := matching.MustLookup("dcpim-k").New(matching.Options{Rounds: 4, K: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(g, rng)
	}
}

// BenchmarkFabricForwarding measures raw fabric throughput: packets per
// second the simulator pushes through a loaded leaf-spine.
func BenchmarkFabricForwarding(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine(1)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, netsim.Config{Spray: true})
	for i := 0; i < tp.NumHosts; i++ {
		fab.AttachProtocol(i, nopProto{})
	}
	fab.Start()
	b.ResetTimer()
	sent := 0
	for i := 0; i < b.N; i++ {
		src := i % 8
		dst := (i + 1) % 8
		fab.Host(src).Send(packet.NewData(src, dst, uint64(i), 0, packet.MTU, packet.PrioShort))
		sent++
		if sent%64 == 0 {
			eng.RunAll()
		}
	}
	eng.RunAll()
}

type nopProto struct{}

func (nopProto) Start(*netsim.Host)          {}
func (nopProto) OnFlowArrival(workload.Flow) {}
func (nopProto) OnPacket(*packet.Packet)     {}

// TestForwardingAllocs pins the hot-path allocation budget: once the event
// free list and packet pool are warm, forwarding a packet through the
// fabric (NIC, two or three switch hops, delivery) must not allocate. The
// budget of 1/16 alloc per packet leaves room only for amortized queue
// growth.
func TestForwardingAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items; alloc counts unstable")
	}
	eng := sim.NewEngine(1)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, netsim.Config{Spray: true})
	for i := 0; i < tp.NumHosts; i++ {
		fab.AttachProtocol(i, nopProto{})
	}
	fab.Start()
	seq := 0
	batch := func() {
		for i := 0; i < 64; i++ {
			src := seq % 8
			dst := (seq + 1) % 8
			fab.Host(src).Send(packet.NewData(src, dst, uint64(seq), 0, packet.MTU, packet.PrioShort))
			seq++
		}
		eng.RunAll()
	}
	// Warm the pools: the first batches grow the heap, the heap backing
	// array, per-port queues and the packet pool.
	for i := 0; i < 16; i++ {
		batch()
	}
	perBatch := testing.AllocsPerRun(50, batch)
	if perPacket := perBatch / 64; perPacket > 1.0/16 {
		t.Fatalf("forwarding allocates %.3f allocs/packet (%.1f per 64-packet batch), want ~0",
			perPacket, perBatch)
	}
}

// TestMetricsDisabledAllocs pins the telemetry layer's zero-cost-off
// guarantee: with no metrics registry (fab.RegisterMetrics(nil) and nil
// instruments everywhere), the observer fan-out and nil-safe instrument
// calls must leave the forwarding hot path at its 0-alloc budget.
func TestMetricsDisabledAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items; alloc counts unstable")
	}
	eng := sim.NewEngine(1)
	tp := topo.SmallLeafSpine().Build()
	fab := netsim.New(eng, tp, netsim.Config{Spray: true})
	fab.RegisterMetrics(nil) // disabled telemetry: must register nothing
	for i := 0; i < tp.NumHosts; i++ {
		fab.AttachProtocol(i, nopProto{})
	}
	fab.Start()
	seq := 0
	batch := func() {
		for i := 0; i < 64; i++ {
			src := seq % 8
			dst := (seq + 1) % 8
			fab.Host(src).Send(packet.NewData(src, dst, uint64(seq), 0, packet.MTU, packet.PrioShort))
			seq++
		}
		eng.RunAll()
	}
	for i := 0; i < 16; i++ {
		batch()
	}
	perBatch := testing.AllocsPerRun(50, batch)
	if perPacket := perBatch / 64; perPacket > 1.0/16 {
		t.Fatalf("disabled metrics allocate %.3f allocs/packet (%.1f per 64-packet batch), want ~0",
			perPacket, perBatch)
	}
}

// BenchmarkDcPIMEndToEnd measures full dcPIM simulation cost: simulated
// microseconds per wall second on an 8-host fabric at load 0.6.
func BenchmarkDcPIMEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(int64(i + 1))
		tp := topo.SmallLeafSpine().Build()
		fab := netsim.New(eng, tp, netsim.Config{Spray: true})
		col := stats.NewCollector(0)
		core.Attach(fab, core.DefaultConfig(), col)
		fab.Start()
		tr := workload.AllToAllConfig{
			Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.6,
			Dist: workload.IMC10(), Horizon: 200 * sim.Microsecond, Seed: int64(i),
		}.Generate()
		fab.Inject(tr)
		eng.Run(sim.Time(300 * sim.Microsecond))
	}
}

// BenchmarkFatTreeSharded measures the conservative-parallel engine on
// one big FatTree fabric at 1, 2 and 4 shards — same seed, byte-identical
// results (TestShardedByteIdentity), only wall-clock changes. Full mode
// runs dcPIM on the 128-host k=8 FatTree; -short drops to the 16-host
// k=4 tree. The interesting numbers are the sub-benchmark ratios:
// shards=4 should run the same simulation ≥2× faster than shards=1.
func BenchmarkFatTreeSharded(b *testing.B) {
	cfg := topo.DefaultFatTree()
	cfg.K = 8
	cfg.Name = "fattree-128"
	horizon := 150 * sim.Microsecond
	if testing.Short() {
		cfg = topo.SmallFatTree()
		horizon = 50 * sim.Microsecond
	}
	tp := cfg.Build()
	tr := workload.AllToAllConfig{
		Hosts: tp.NumHosts, HostRate: tp.HostRate, Load: 0.6,
		Dist: workload.IMC10(), Horizon: horizon, Seed: 42,
	}.Generate()
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := experiments.Run(experiments.RunSpec{
					Protocol: experiments.DCPIM, Topo: tp, Trace: tr,
					Horizon: horizon + horizon/2, Seed: 99, Shards: shards,
				})
				if res.Col.Completed() == 0 {
					b.Fatal("no flows completed")
				}
			}
		})
	}
}

// BenchmarkWorkloadGeneration measures trace generation throughput.
func BenchmarkWorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	dist := workload.WebSearch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.AllToAllConfig{
			Hosts: 144, HostRate: 100e9, Load: 0.6,
			Dist: dist, Horizon: 100 * sim.Microsecond, Seed: int64(i),
		}.Generate()
	}
}
